// Command walcheck is the crash-replay verifier for the durable answer log:
// it proves that killing the platform at any write to the WAL — mid-record,
// mid-snapshot, between rounds — loses no committed answer and corrupts no
// state. It is the CI gate behind `make crashcheck` and a local debugging
// tool for the wal package.
//
//	go run ./cmd/walcheck -iterations 5 -edges 120 -seed 42
//
// Protocol, per iteration:
//
//  1. A reference run drives the full crowd scenario in-process (register a
//     CyLog project, attach a WAL, seed edge facts, generate tasks, answer
//     them with a deterministic oracle keyed on the request's key values)
//     and records the final engine fingerprint — every relation's tuples
//     plus the sorted pending request ids — and the number of physical WAL
//     writes the run performs.
//  2. A child process (this binary with -child) re-runs the identical
//     scenario but SIGKILLs itself at a randomly chosen write, leaving a
//     torn log behind. kill -9 cannot be caught, so nothing is flushed or
//     finalized — exactly a process crash.
//  3. The parent recovers from the child's directory (snapshot + log-suffix
//     replay), resumes the same scenario to quiescence, and requires the
//     final fingerprint to be byte-identical to the reference.
//
// The oracle answers (and skips) requests as a pure function of the request
// key and the run seed, so a request whose answer the crash destroyed is
// re-asked and re-answered identically — the differential holds for every
// kill point. Fsync policy and snapshot cadence are randomized per iteration.
//
// With -content-fuzz the scenario swaps to a string-labelled open relation
// and answers carry adversarial values (control bytes, NULs, unicode, long
// runs) drawn from a per-iteration salt; the differential then also covers
// the relations' content-derived statistics — row counts and per-column
// distinct estimates — so recovery must rebuild the planner's cost inputs
// exactly, not just the tuples.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"os/exec"
	"sort"
	"strings"
	"time"

	"github.com/crowd4u/crowd4u-go/internal/cylog"
	"github.com/crowd4u/crowd4u-go/internal/platform"
	"github.com/crowd4u/crowd4u-go/internal/project"
	"github.com/crowd4u/crowd4u-go/internal/task"
	"github.com/crowd4u/crowd4u-go/internal/wal"
)

const crowdCyLog = `
rel edge(a: int, b: int).
rel reach(a: int, b: int).
rel endpoint(n: int).
open rel approve(n: int, ok: bool) key(n) asks "Approve this endpoint".
rel approved(n: int).
rel rejected(n: int).

reach(X, Y) :- edge(X, Y).
reach(X, Z) :- reach(X, Y), edge(Y, Z).
endpoint(N) :- reach(_, N), !edge(N, _).
approved(N) :- endpoint(N), approve(N, true).
rejected(N) :- endpoint(N), !approved(N).
`

// contentCyLog is the content-fuzz scenario: the open relation carries a
// free-text label column, so the adversarial answer values flow through the
// task form, the engine, the WAL record codec and the snapshot codec, and
// crash recovery must reproduce them byte-for-byte.
const contentCyLog = `
rel edge(a: int, b: int).
rel reach(a: int, b: int).
rel endpoint(n: int).
open rel tag(n: int, label: string) key(n) asks "Label this endpoint".
rel tagged(n: int, label: string).
rel untagged(n: int).

reach(X, Y) :- edge(X, Y).
reach(X, Z) :- reach(X, Y), edge(Y, Z).
endpoint(N) :- reach(_, N), !edge(N, _).
tagged(N, L) :- endpoint(N), tag(N, L).
untagged(N) :- endpoint(N), !tagged(N, _).
`

// adversarialLabels are the content shapes the fuzz mode cycles through:
// whitespace, quoting, control bytes, NULs, unicode, separators the codecs
// or the fingerprint might mis-handle, and a long run. Values are suffixed
// per request so distinct-count estimates move too.
var adversarialLabels = []string{
	"plain",
	"with space",
	"newline\nsplit",
	"tab\tsep",
	"quote\"'`",
	"unit\x1fsep",
	"nul\x00byte",
	"naïve-ünïcode-日本語",
	"comma,semicolon;pipe|colon:",
	" leading-and-trailing ",
	strings.Repeat("x", 1024),
}

// scenario is one deterministic crash-replay configuration.
type scenario struct {
	dir       string
	seed      int64
	edges     int
	policy    wal.SyncPolicy
	snapEvery int
	// shards, when > 0, runs the engine hash-partitioned across that many
	// evaluation shards. Recovery must replay into the same fixpoint
	// regardless of the shard count — sharding is evaluation-side only and
	// never touches the log format.
	shards int
	// killAt, when > 0, SIGKILLs the process immediately before the killAt-th
	// physical WAL write.
	killAt int
	// content switches to the content-fuzz scenario: a string-labelled open
	// relation answered with adversarial values drawn from salt — crash
	// recovery must reproduce the exact bytes, and the fingerprint's
	// content-derived statistics (row counts + distinct estimates), not just
	// the tuple values.
	content bool
	salt    int64
	// backend selects the relstore backend for this run ("" = memory). The
	// parent's reference run always uses memory, so a disk-backed crash +
	// recovery must land on a fingerprint byte-identical to the memory
	// backend's — the storage seam adds no observable semantics.
	backend string
}

// label picks this request's adversarial answer value as a pure function of
// the content salt and the request key, so crash and resume submit identical
// bytes. The numeric suffix varies per key, keeping per-column distinct
// counts moving.
func (s scenario) label(keyVals string) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|label", s.salt, keyVals)
	v := h.Sum64()
	return fmt.Sprintf("%s#%d", adversarialLabels[v%uint64(len(adversarialLabels))], v%97)
}

// oracle decides, as a pure function of the request key and the run seed,
// whether a request is answered this lifetime and with what value. Crash and
// resume must make identical decisions for identical keys, or the
// differential would chase noise instead of durability bugs.
func (s scenario) oracle(keyVals string) (answer bool, ok bool) {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s", s.seed, keyVals)
	v := h.Sum64()
	return v%10 < 7, v%2 == 0 // answer 70% of requests; approve half
}

// run drives the scenario: recover-or-create the WAL, seed the edge chains,
// then generate-and-answer rounds until quiescent. It returns the final
// engine fingerprint digest and the total number of physical WAL writes.
func (s scenario) run() (string, int, error) {
	p := platform.New()
	p.SetClock(func() time.Time { return time.Date(2016, 9, 5, 9, 0, 0, 0, time.UTC) })
	if s.backend != "" {
		// A deliberately tiny budget so even this small scenario pages
		// relations in and out while crash-killing and recovering.
		p.SetStorage(platform.StorageOptions{Backend: s.backend, Dir: s.dir + "-store", BudgetBytes: 1 << 14})
	}
	source := crowdCyLog
	if s.content {
		source = contentCyLog
	}
	admin, err := p.RegisterProject(project.Description{
		Name: "crashcheck", Requester: "walcheck", CyLogSource: source,
	})
	if err != nil {
		return "", 0, err
	}
	id := admin.Description.ID

	writes := 0
	opts := wal.Options{Policy: s.policy, WriteObserver: func(kind string, n int) {
		writes++
		if s.killAt > 0 && writes == s.killAt {
			// Unflushed, uncatchable death at an arbitrary write boundary.
			proc, _ := os.FindProcess(os.Getpid())
			proc.Kill()
			select {} // the signal is asynchronous; never perform the write
		}
	}}
	l, err := wal.Open(s.dir, opts)
	if err != nil {
		return "", 0, err
	}
	defer l.Close()
	if _, err := p.RecoverProject(id, l, s.snapEvery); err != nil {
		return "", 0, err
	}
	eng := p.Engine(id)
	if s.shards > 0 {
		eng.SetShards(s.shards)
	}

	// Seed the edge chains. Inserts already recovered from the log
	// deduplicate silently, so re-seeding after a crash is a no-op.
	const chain = 10
	for i := 0; i < s.edges; i++ {
		base := (i / chain) * (chain + 1)
		if err := eng.AddFact("edge", base+i%chain, base+i%chain+1); err != nil {
			return "", 0, err
		}
	}

	rng := rand.New(rand.NewSource(s.seed))
	for round := 0; round < 200; round++ {
		created, err := p.GenerateTasksFromCyLog(id)
		if err != nil {
			return "", 0, err
		}
		answered := 0
		for _, tk := range created {
			key := taskKey(tk)
			doAnswer, approve := s.oracle(key)
			if !doAnswer {
				continue
			}
			fields := map[string]string{}
			if s.content {
				fields["label"] = s.label(key)
			} else if approve {
				fields["ok"] = "yes"
			} else {
				fields["ok"] = "no"
			}
			res := &task.Result{SubmittedBy: "sim", Fields: fields, Quality: 1}
			// Alternate the two submission paths so both the immediate and
			// the batched commit points face random kill offsets.
			if rng.Intn(2) == 0 {
				err = p.SubmitResult(tk.ID, res)
			} else {
				err = p.SubmitResultBatched(tk.ID, res)
			}
			if err != nil {
				return "", 0, err
			}
			answered++
		}
		if len(created) == 0 && answered == 0 {
			break
		}
	}
	if err := l.Close(); err != nil {
		return "", 0, err
	}
	return fingerprint(eng), writes, nil
}

// taskKey reconstructs the request key from the generated task's inputs in
// sorted column order — stable across processes.
func taskKey(tk *task.Task) string {
	cols := make([]string, 0, len(tk.Input))
	for c := range tk.Input {
		cols = append(cols, c)
	}
	sort.Strings(cols)
	parts := make([]string, 0, len(cols))
	for _, c := range cols {
		parts = append(parts, c+"="+tk.Input[c])
	}
	return strings.Join(parts, ",")
}

// fingerprint digests the durable observables: every relation's sorted
// tuples, its content-derived statistics (row count and per-column distinct
// estimates — pure functions of the contents, so recovery must rebuild them
// exactly; the stats *epoch* is deliberately excluded, being a history
// counter that legitimately differs between an uninterrupted run and a
// crash-recovered one), plus the sorted pending request ids. Task-pool ids
// restart with the process and are deliberately excluded.
func fingerprint(e *cylog.Engine) string {
	h := sha256.New()
	for _, name := range e.Database().Names() {
		fmt.Fprintf(h, "%s:", name)
		for _, tup := range e.Facts(name) {
			fmt.Fprintf(h, "%v;", tup)
		}
		rel := e.Database().Relation(name)
		fmt.Fprintf(h, "rows=%d", rel.Len())
		for c := 0; c < rel.Schema().Arity(); c++ {
			fmt.Fprintf(h, ",d%d=%d", c, rel.ColumnDistinct(c))
		}
		fmt.Fprint(h, ";")
	}
	var ids []string
	for _, r := range e.PendingRequests() {
		ids = append(ids, r.ID)
	}
	sort.Strings(ids)
	fmt.Fprintf(h, "pending:%v", ids)
	return fmt.Sprintf("%x", h.Sum(nil))
}

func main() {
	var (
		child       = flag.Bool("child", false, "internal: run one scenario and (optionally) self-kill")
		dir         = flag.String("dir", "", "WAL directory (child mode)")
		seed        = flag.Int64("seed", 1, "run seed (oracle decisions and kill points)")
		edges       = flag.Int("edges", 120, "edge facts per run (chains of 10)")
		iterations  = flag.Int("iterations", 5, "randomized kill points to test")
		policyFlag  = flag.Int("policy", 0, "fsync policy (child mode): 0=always 1=interval 2=off")
		snapEvery   = flag.Int("snapshot-every", 0, "snapshot cadence in appended records (child mode)")
		shards      = flag.Int("shards", 0, "engine shard count (0 = cycle 1,2,4 across iterations)")
		killAt      = flag.Int("kill-write", 0, "self-kill before this WAL write (child mode)")
		contentFuzz = flag.Bool("content-fuzz", false, "fuzz answer values: adversarial string labels per iteration, stats included in the differential")
		contentSalt = flag.Int64("content-salt", 0, "content-fuzz label salt (child mode)")
		backend     = flag.String("backend", "", "relstore backend for crash+recovery runs: memory or disk (parent mode: \"\" cycles both across iterations; references always run on memory)")
	)
	flag.Parse()

	if *child {
		s := scenario{dir: *dir, seed: *seed, edges: *edges,
			policy: wal.SyncPolicy(*policyFlag), snapEvery: *snapEvery, shards: *shards, killAt: *killAt,
			content: *contentFuzz, salt: *contentSalt, backend: *backend}
		digest, writes, err := s.run()
		if err != nil {
			fmt.Fprintln(os.Stderr, "walcheck child:", err)
			os.Exit(1)
		}
		fmt.Printf("digest=%s writes=%d\n", digest, writes)
		return
	}

	if err := drive(*seed, *edges, *iterations, *shards, *contentFuzz, *backend); err != nil {
		fmt.Fprintln(os.Stderr, "walcheck: FAIL:", err)
		os.Exit(1)
	}
}

// drive runs the parent protocol: reference digest, then per-iteration
// randomized child crash + in-process recovery + differential. shards pins
// the engine shard count for every run; 0 cycles 1, 2, 4 across iterations so
// the default CI invocation covers recovery into sharded fixpoints too.
// content switches every run to the content-fuzz scenario with a fresh label
// salt per iteration. backend pins the relstore backend for the crash and
// recovery runs; "" cycles memory and disk so the default CI invocation also
// proves disk-backed recovery lands on the memory backend's exact
// fingerprint (references always run on memory — that is the differential).
func drive(seed int64, edges, iterations, shards int, content bool, backend string) error {
	self, err := os.Executable()
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	root, err := os.MkdirTemp("", "walcheck-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(root)

	for iter := 0; iter < iterations; iter++ {
		policy := wal.SyncPolicy(rng.Intn(3))
		snapEvery := rng.Intn(4) // 0 disables snapshots
		iterShards := shards
		if iterShards == 0 {
			iterShards = []int{1, 2, 4}[iter%3]
		}
		salt := rng.Int63()
		iterBackend := backend
		if iterBackend == "" {
			iterBackend = []string{"memory", "disk"}[iter%2]
		}
		iterDir := fmt.Sprintf("%s/iter%d", root, iter)

		// Reference: the uninterrupted run under this iteration's exact
		// configuration. Its write count bounds the kill offset; its digest
		// is what every crashed-and-recovered run must reproduce.
		ref := scenario{dir: iterDir + "-ref", seed: seed, edges: edges, policy: policy, snapEvery: snapEvery, shards: iterShards,
			content: content, salt: salt}
		refDigest, refWrites, err := ref.run()
		if err != nil {
			return fmt.Errorf("iteration %d reference: %w", iter, err)
		}
		if refWrites < 2 {
			return fmt.Errorf("iteration %d: reference performed only %d WAL writes; scenario too small", iter, refWrites)
		}
		kill := 1 + rng.Intn(refWrites)

		crashDir := iterDir + "-crash"
		args := []string{
			"-child", "-dir", crashDir,
			"-seed", fmt.Sprint(seed), "-edges", fmt.Sprint(edges),
			"-policy", fmt.Sprint(int(policy)), "-snapshot-every", fmt.Sprint(snapEvery),
			"-shards", fmt.Sprint(iterShards),
			"-kill-write", fmt.Sprint(kill),
			"-backend", iterBackend,
		}
		if content {
			args = append(args, "-content-fuzz", "-content-salt", fmt.Sprint(salt))
		}
		cmd := exec.Command(self, args...)
		cmd.Stderr = os.Stderr
		err = cmd.Run()
		if err == nil {
			return fmt.Errorf("iteration %d: child survived its kill point (write %d of %d)", iter, kill, refWrites)
		}
		if ee, ok := err.(*exec.ExitError); !ok || ee.ProcessState.ExitCode() != -1 {
			return fmt.Errorf("iteration %d: child died oddly (want SIGKILL): %v", iter, err)
		}

		// Recover in this process from whatever the kill left behind and
		// resume the identical scenario to quiescence.
		resume := scenario{dir: crashDir, seed: seed, edges: edges, policy: policy, snapEvery: snapEvery, shards: iterShards,
			content: content, salt: salt, backend: iterBackend}
		gotDigest, _, err := resume.run()
		if err != nil {
			return fmt.Errorf("iteration %d: recovery after kill at write %d/%d (policy=%s snapshot-every=%d): %w",
				iter, kill, refWrites, policy, snapEvery, err)
		}
		if gotDigest != refDigest {
			return fmt.Errorf("iteration %d: recovered digest %s != reference %s (seed=%d kill=%d/%d policy=%s snapshot-every=%d shards=%d backend=%s)",
				iter, gotDigest[:12], refDigest[:12], seed, kill, refWrites, policy, snapEvery, iterShards, iterBackend)
		}
		fmt.Printf("walcheck: iteration %d ok — killed at write %d/%d, policy=%s, snapshot-every=%d, shards=%d, backend=%s, digest %s\n",
			iter, kill, refWrites, policy, snapEvery, iterShards, iterBackend, refDigest[:12])
	}
	mode := "answers"
	if content {
		mode = "content-fuzzed answers"
	}
	fmt.Printf("walcheck: PASS — %d randomized kill points with %s recovered byte-identically (seed=%d, rerun with -seed to reproduce)\n",
		iterations, mode, seed)
	return nil
}
