// Command walcheck is the crash-replay verifier for the durable answer log:
// it proves that killing the platform at any write to the WAL — mid-record,
// mid-snapshot, between rounds — loses no committed answer and corrupts no
// state. It is the CI gate behind `make crashcheck` and a local debugging
// tool for the wal package.
//
//	go run ./cmd/walcheck -iterations 5 -edges 120 -seed 42
//
// Protocol, per iteration:
//
//  1. A reference run drives the full crowd scenario in-process (register a
//     CyLog project, attach a WAL, seed edge facts, generate tasks, answer
//     them with a deterministic oracle keyed on the request's key values)
//     and records the final engine fingerprint — every relation's tuples
//     plus the sorted pending request ids — and the number of physical WAL
//     writes the run performs.
//  2. A child process (this binary with -child) re-runs the identical
//     scenario but SIGKILLs itself at a randomly chosen write, leaving a
//     torn log behind. kill -9 cannot be caught, so nothing is flushed or
//     finalized — exactly a process crash.
//  3. The parent recovers from the child's directory (snapshot + log-suffix
//     replay), resumes the same scenario to quiescence, and requires the
//     final fingerprint to be byte-identical to the reference.
//
// The oracle answers (and skips) requests as a pure function of the request
// key and the run seed, so a request whose answer the crash destroyed is
// re-asked and re-answered identically — the differential holds for every
// kill point. Fsync policy and snapshot cadence are randomized per iteration.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"os/exec"
	"sort"
	"strings"
	"time"

	"github.com/crowd4u/crowd4u-go/internal/cylog"
	"github.com/crowd4u/crowd4u-go/internal/platform"
	"github.com/crowd4u/crowd4u-go/internal/project"
	"github.com/crowd4u/crowd4u-go/internal/task"
	"github.com/crowd4u/crowd4u-go/internal/wal"
)

const crowdCyLog = `
rel edge(a: int, b: int).
rel reach(a: int, b: int).
rel endpoint(n: int).
open rel approve(n: int, ok: bool) key(n) asks "Approve this endpoint".
rel approved(n: int).
rel rejected(n: int).

reach(X, Y) :- edge(X, Y).
reach(X, Z) :- reach(X, Y), edge(Y, Z).
endpoint(N) :- reach(_, N), !edge(N, _).
approved(N) :- endpoint(N), approve(N, true).
rejected(N) :- endpoint(N), !approved(N).
`

// scenario is one deterministic crash-replay configuration.
type scenario struct {
	dir       string
	seed      int64
	edges     int
	policy    wal.SyncPolicy
	snapEvery int
	// shards, when > 0, runs the engine hash-partitioned across that many
	// evaluation shards. Recovery must replay into the same fixpoint
	// regardless of the shard count — sharding is evaluation-side only and
	// never touches the log format.
	shards int
	// killAt, when > 0, SIGKILLs the process immediately before the killAt-th
	// physical WAL write.
	killAt int
}

// oracle decides, as a pure function of the request key and the run seed,
// whether a request is answered this lifetime and with what value. Crash and
// resume must make identical decisions for identical keys, or the
// differential would chase noise instead of durability bugs.
func (s scenario) oracle(keyVals string) (answer bool, ok bool) {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s", s.seed, keyVals)
	v := h.Sum64()
	return v%10 < 7, v%2 == 0 // answer 70% of requests; approve half
}

// run drives the scenario: recover-or-create the WAL, seed the edge chains,
// then generate-and-answer rounds until quiescent. It returns the final
// engine fingerprint digest and the total number of physical WAL writes.
func (s scenario) run() (string, int, error) {
	p := platform.New()
	p.SetClock(func() time.Time { return time.Date(2016, 9, 5, 9, 0, 0, 0, time.UTC) })
	admin, err := p.RegisterProject(project.Description{
		Name: "crashcheck", Requester: "walcheck", CyLogSource: crowdCyLog,
	})
	if err != nil {
		return "", 0, err
	}
	id := admin.Description.ID

	writes := 0
	opts := wal.Options{Policy: s.policy, WriteObserver: func(kind string, n int) {
		writes++
		if s.killAt > 0 && writes == s.killAt {
			// Unflushed, uncatchable death at an arbitrary write boundary.
			proc, _ := os.FindProcess(os.Getpid())
			proc.Kill()
			select {} // the signal is asynchronous; never perform the write
		}
	}}
	l, err := wal.Open(s.dir, opts)
	if err != nil {
		return "", 0, err
	}
	defer l.Close()
	if _, err := p.RecoverProject(id, l, s.snapEvery); err != nil {
		return "", 0, err
	}
	eng := p.Engine(id)
	if s.shards > 0 {
		eng.SetShards(s.shards)
	}

	// Seed the edge chains. Inserts already recovered from the log
	// deduplicate silently, so re-seeding after a crash is a no-op.
	const chain = 10
	for i := 0; i < s.edges; i++ {
		base := (i / chain) * (chain + 1)
		if err := eng.AddFact("edge", base+i%chain, base+i%chain+1); err != nil {
			return "", 0, err
		}
	}

	rng := rand.New(rand.NewSource(s.seed))
	for round := 0; round < 200; round++ {
		created, err := p.GenerateTasksFromCyLog(id)
		if err != nil {
			return "", 0, err
		}
		answered := 0
		for _, tk := range created {
			key := taskKey(tk)
			doAnswer, approve := s.oracle(key)
			if !doAnswer {
				continue
			}
			val := "no"
			if approve {
				val = "yes"
			}
			res := &task.Result{SubmittedBy: "sim", Fields: map[string]string{"ok": val}, Quality: 1}
			// Alternate the two submission paths so both the immediate and
			// the batched commit points face random kill offsets.
			if rng.Intn(2) == 0 {
				err = p.SubmitResult(tk.ID, res)
			} else {
				err = p.SubmitResultBatched(tk.ID, res)
			}
			if err != nil {
				return "", 0, err
			}
			answered++
		}
		if len(created) == 0 && answered == 0 {
			break
		}
	}
	if err := l.Close(); err != nil {
		return "", 0, err
	}
	return fingerprint(eng), writes, nil
}

// taskKey reconstructs the request key from the generated task's inputs in
// sorted column order — stable across processes.
func taskKey(tk *task.Task) string {
	cols := make([]string, 0, len(tk.Input))
	for c := range tk.Input {
		cols = append(cols, c)
	}
	sort.Strings(cols)
	parts := make([]string, 0, len(cols))
	for _, c := range cols {
		parts = append(parts, c+"="+tk.Input[c])
	}
	return strings.Join(parts, ",")
}

// fingerprint digests the durable observables: every relation's sorted
// tuples plus the sorted pending request ids. Task-pool ids restart with the
// process and are deliberately excluded.
func fingerprint(e *cylog.Engine) string {
	h := sha256.New()
	for _, name := range e.Database().Names() {
		fmt.Fprintf(h, "%s:", name)
		for _, tup := range e.Facts(name) {
			fmt.Fprintf(h, "%v;", tup)
		}
	}
	var ids []string
	for _, r := range e.PendingRequests() {
		ids = append(ids, r.ID)
	}
	sort.Strings(ids)
	fmt.Fprintf(h, "pending:%v", ids)
	return fmt.Sprintf("%x", h.Sum(nil))
}

func main() {
	var (
		child      = flag.Bool("child", false, "internal: run one scenario and (optionally) self-kill")
		dir        = flag.String("dir", "", "WAL directory (child mode)")
		seed       = flag.Int64("seed", 1, "run seed (oracle decisions and kill points)")
		edges      = flag.Int("edges", 120, "edge facts per run (chains of 10)")
		iterations = flag.Int("iterations", 5, "randomized kill points to test")
		policyFlag = flag.Int("policy", 0, "fsync policy (child mode): 0=always 1=interval 2=off")
		snapEvery  = flag.Int("snapshot-every", 0, "snapshot cadence in appended records (child mode)")
		shards     = flag.Int("shards", 0, "engine shard count (0 = cycle 1,2,4 across iterations)")
		killAt     = flag.Int("kill-write", 0, "self-kill before this WAL write (child mode)")
	)
	flag.Parse()

	if *child {
		s := scenario{dir: *dir, seed: *seed, edges: *edges,
			policy: wal.SyncPolicy(*policyFlag), snapEvery: *snapEvery, shards: *shards, killAt: *killAt}
		digest, writes, err := s.run()
		if err != nil {
			fmt.Fprintln(os.Stderr, "walcheck child:", err)
			os.Exit(1)
		}
		fmt.Printf("digest=%s writes=%d\n", digest, writes)
		return
	}

	if err := drive(*seed, *edges, *iterations, *shards); err != nil {
		fmt.Fprintln(os.Stderr, "walcheck: FAIL:", err)
		os.Exit(1)
	}
}

// drive runs the parent protocol: reference digest, then per-iteration
// randomized child crash + in-process recovery + differential. shards pins
// the engine shard count for every run; 0 cycles 1, 2, 4 across iterations so
// the default CI invocation covers recovery into sharded fixpoints too.
func drive(seed int64, edges, iterations, shards int) error {
	self, err := os.Executable()
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	root, err := os.MkdirTemp("", "walcheck-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(root)

	for iter := 0; iter < iterations; iter++ {
		policy := wal.SyncPolicy(rng.Intn(3))
		snapEvery := rng.Intn(4) // 0 disables snapshots
		iterShards := shards
		if iterShards == 0 {
			iterShards = []int{1, 2, 4}[iter%3]
		}
		iterDir := fmt.Sprintf("%s/iter%d", root, iter)

		// Reference: the uninterrupted run under this iteration's exact
		// configuration. Its write count bounds the kill offset; its digest
		// is what every crashed-and-recovered run must reproduce.
		ref := scenario{dir: iterDir + "-ref", seed: seed, edges: edges, policy: policy, snapEvery: snapEvery, shards: iterShards}
		refDigest, refWrites, err := ref.run()
		if err != nil {
			return fmt.Errorf("iteration %d reference: %w", iter, err)
		}
		if refWrites < 2 {
			return fmt.Errorf("iteration %d: reference performed only %d WAL writes; scenario too small", iter, refWrites)
		}
		kill := 1 + rng.Intn(refWrites)

		crashDir := iterDir + "-crash"
		cmd := exec.Command(self,
			"-child", "-dir", crashDir,
			"-seed", fmt.Sprint(seed), "-edges", fmt.Sprint(edges),
			"-policy", fmt.Sprint(int(policy)), "-snapshot-every", fmt.Sprint(snapEvery),
			"-shards", fmt.Sprint(iterShards),
			"-kill-write", fmt.Sprint(kill))
		cmd.Stderr = os.Stderr
		err = cmd.Run()
		if err == nil {
			return fmt.Errorf("iteration %d: child survived its kill point (write %d of %d)", iter, kill, refWrites)
		}
		if ee, ok := err.(*exec.ExitError); !ok || ee.ProcessState.ExitCode() != -1 {
			return fmt.Errorf("iteration %d: child died oddly (want SIGKILL): %v", iter, err)
		}

		// Recover in this process from whatever the kill left behind and
		// resume the identical scenario to quiescence.
		resume := scenario{dir: crashDir, seed: seed, edges: edges, policy: policy, snapEvery: snapEvery, shards: iterShards}
		gotDigest, _, err := resume.run()
		if err != nil {
			return fmt.Errorf("iteration %d: recovery after kill at write %d/%d (policy=%s snapshot-every=%d): %w",
				iter, kill, refWrites, policy, snapEvery, err)
		}
		if gotDigest != refDigest {
			return fmt.Errorf("iteration %d: recovered digest %s != reference %s (seed=%d kill=%d/%d policy=%s snapshot-every=%d shards=%d)",
				iter, gotDigest[:12], refDigest[:12], seed, kill, refWrites, policy, snapEvery, iterShards)
		}
		fmt.Printf("walcheck: iteration %d ok — killed at write %d/%d, policy=%s, snapshot-every=%d, shards=%d, digest %s\n",
			iter, kill, refWrites, policy, snapEvery, iterShards, refDigest[:12])
	}
	fmt.Printf("walcheck: PASS — %d randomized kill points recovered byte-identically (seed=%d, rerun with -seed to reproduce)\n",
		iterations, seed)
	return nil
}
