// Command benchcheck is the CI benchmark-regression gate: it parses `go test
// -bench` output, compares every benchmark against the baselines recorded in
// BENCH_cylog.json and fails when a metric regresses beyond its tolerance.
//
//	make bench BENCHTIME=1x > bench.out
//	go run ./cmd/benchcheck -baseline BENCH_cylog.json -input bench.out
//
// Two metrics are gated differently:
//
//   - allocs/op is near-deterministic for a fixed workload, so it is checked
//     on every host with a tight tolerance (default 0.30, i.e. +30%). The
//     binding-row layout and the relstore bucket storage live and die by
//     this number; a regression means an optimisation silently stopped
//     applying.
//   - ns/op varies with hardware, so it is only checked when the host has at
//     least the baseline's wallclock_min_cores cores (CI runners qualify,
//     laptops on battery may not) and with a loose tolerance (default 1.0,
//     i.e. fail only past 2x) that catches real cliffs — an index or frontier
//     hash no longer engaging — rather than scheduler noise.
//
// Baseline entries that are missing from the run fail the gate (a silently
// deleted benchmark is a lost regression guard); measured benchmarks without
// a baseline only warn, so adding a benchmark does not require refreshing
// baselines in the same commit.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// baselineEntry is one benchmark's recorded numbers in BENCH_cylog.json.
type baselineEntry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// baselineFile mirrors the parts of BENCH_cylog.json benchcheck reads.
type baselineFile struct {
	Benchmarks map[string]map[string]baselineEntry `json:"benchmarks"`
	Benchcheck struct {
		AllocTolerance     float64 `json:"alloc_tolerance"`
		WallclockTolerance float64 `json:"wallclock_tolerance"`
		WallclockMinCores  int     `json:"wallclock_min_cores"`
	} `json:"benchcheck"`
}

// measurement is one parsed benchmark result line.
type measurement struct {
	name        string
	nsPerOp     float64
	allocsPerOp float64
	hasAllocs   bool
}

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_cylog.json", "baseline JSON file")
		inputPath    = flag.String("input", "-", "bench output file ('-' = stdin)")
		allocTol     = flag.Float64("alloc-tolerance", -1, "allocs/op slack fraction (overrides baseline config)")
		wallTol      = flag.Float64("wallclock-tolerance", -1, "ns/op slack fraction (overrides baseline config)")
		minCores     = flag.Int("min-cores", -1, "cores required for wall-clock checks (overrides baseline config)")
		skipWall     = flag.Bool("skip-wallclock", false, "skip ns/op checks regardless of cores")
	)
	flag.Parse()

	base, err := loadBaseline(*baselinePath)
	if err != nil {
		fatal(err)
	}
	var in io.Reader = os.Stdin
	if *inputPath != "-" {
		f, err := os.Open(*inputPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	measured, err := parseBenchOutput(in)
	if err != nil {
		fatal(err)
	}

	cfg := base.Benchcheck
	if *allocTol >= 0 {
		cfg.AllocTolerance = *allocTol
	}
	if *wallTol >= 0 {
		cfg.WallclockTolerance = *wallTol
	}
	if *minCores >= 0 {
		cfg.WallclockMinCores = *minCores
	}
	checkWall := !*skipWall && runtime.NumCPU() >= cfg.WallclockMinCores
	if !checkWall {
		fmt.Printf("benchcheck: skipping wall-clock checks (host cores %d < required %d or -skip-wallclock)\n",
			runtime.NumCPU(), cfg.WallclockMinCores)
	}

	failures := check(flatten(base.Benchmarks), measured, cfg.AllocTolerance, cfg.WallclockTolerance, checkWall)
	for _, f := range failures {
		fmt.Println("FAIL:", f)
	}
	if len(failures) > 0 {
		fmt.Printf("benchcheck: %d regression(s) against %s\n", len(failures), *baselinePath)
		os.Exit(1)
	}
	fmt.Printf("benchcheck: %d benchmark(s) within tolerance of %s\n", len(measured), *baselinePath)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchcheck:", err)
	os.Exit(2)
}

func loadBaseline(path string) (*baselineFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var base baselineFile
	if err := json.Unmarshal(data, &base); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	if base.Benchcheck.AllocTolerance == 0 {
		base.Benchcheck.AllocTolerance = 0.30
	}
	if base.Benchcheck.WallclockTolerance == 0 {
		base.Benchcheck.WallclockTolerance = 1.0
	}
	if base.Benchcheck.WallclockMinCores == 0 {
		base.Benchcheck.WallclockMinCores = 2
	}
	return &base, nil
}

// flatten merges the per-package benchmark groups into one name->entry map
// (group names are disjoint across packages).
func flatten(groups map[string]map[string]baselineEntry) map[string]baselineEntry {
	out := make(map[string]baselineEntry)
	for _, group := range groups {
		for name, e := range group {
			out[name] = e
		}
	}
	return out
}

// parseBenchOutput extracts benchmark result lines ("BenchmarkName N value
// ns/op [bytes B/op allocs allocs/op]") from go test -bench output.
func parseBenchOutput(r io.Reader) ([]measurement, error) {
	var out []measurement
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		m := measurement{name: strings.TrimPrefix(fields[0], "Benchmark")}
		ok := false
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch fields[i+1] {
			case "ns/op":
				m.nsPerOp = val
				ok = true
			case "allocs/op":
				m.allocsPerOp = val
				m.hasAllocs = true
			}
		}
		if ok {
			out = append(out, m)
		}
	}
	return out, sc.Err()
}

// matchBaseline finds the baseline entry for a measured benchmark name. The
// go tool appends "-<GOMAXPROCS>" to benchmark names when GOMAXPROCS > 1, so
// the exact name is tried first and then the name with a trailing all-digit
// segment stripped (exact-first keeps names with legitimate numeric suffixes
// like "scan-10000" unambiguous).
func matchBaseline(base map[string]baselineEntry, name string) (baselineEntry, string, bool) {
	if e, ok := base[name]; ok {
		return e, name, true
	}
	if i := strings.LastIndex(name, "-"); i > 0 {
		suffix := name[i+1:]
		if _, err := strconv.Atoi(suffix); err == nil {
			stripped := name[:i]
			if e, ok := base[stripped]; ok {
				return e, stripped, true
			}
		}
	}
	return baselineEntry{}, "", false
}

// check compares measurements against baselines and returns failure messages.
func check(base map[string]baselineEntry, measured []measurement, allocTol, wallTol float64, checkWall bool) []string {
	var failures []string
	seen := make(map[string]bool, len(base))
	for _, m := range measured {
		entry, key, ok := matchBaseline(base, m.name)
		if !ok {
			fmt.Printf("note: %s has no baseline (refresh BENCH_cylog.json to gate it)\n", m.name)
			continue
		}
		seen[key] = true
		if entry.AllocsPerOp > 0 && m.hasAllocs {
			limit := entry.AllocsPerOp * (1 + allocTol)
			if m.allocsPerOp > limit {
				failures = append(failures, fmt.Sprintf(
					"%s: %.0f allocs/op exceeds baseline %.0f by more than %.0f%%",
					m.name, m.allocsPerOp, entry.AllocsPerOp, allocTol*100))
			} else if m.allocsPerOp < entry.AllocsPerOp/(1+allocTol) {
				fmt.Printf("note: %s improved to %.0f allocs/op (baseline %.0f) — consider refreshing baselines\n",
					m.name, m.allocsPerOp, entry.AllocsPerOp)
			}
		}
		if checkWall && entry.NsPerOp > 0 {
			limit := entry.NsPerOp * (1 + wallTol)
			if m.nsPerOp > limit {
				failures = append(failures, fmt.Sprintf(
					"%s: %.0f ns/op exceeds baseline %.0f by more than %.0f%%",
					m.name, m.nsPerOp, entry.NsPerOp, wallTol*100))
			}
		}
	}
	for name := range base {
		if !seen[name] {
			failures = append(failures, fmt.Sprintf("%s: baseline benchmark was not measured (removed or renamed?)", name))
		}
	}
	return failures
}
