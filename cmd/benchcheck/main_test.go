package main

import (
	"strings"
	"testing"
)

const sampleOutput = `
goos: linux
goarch: amd64
pkg: github.com/crowd4u/crowd4u-go/internal/cylog
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkTransitiveClosure/seminaive-indexed-10k         	       1	 102021451 ns/op	117807760 B/op	    1477 allocs/op
BenchmarkTransitiveClosure/seminaive-indexed-10k-4       	       1	 102021451 ns/op	117807760 B/op	    1477 allocs/op
BenchmarkScanEq-4                                        	  902322	      1334 ns/op
PASS
ok  	github.com/crowd4u/crowd4u-go/internal/cylog	12.3s
`

func TestParseBenchOutput(t *testing.T) {
	ms, err := parseBenchOutput(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 3 {
		t.Fatalf("parsed %d measurements, want 3: %+v", len(ms), ms)
	}
	m := ms[0]
	if m.name != "TransitiveClosure/seminaive-indexed-10k" {
		t.Errorf("name = %q", m.name)
	}
	if m.nsPerOp != 102021451 || !m.hasAllocs || m.allocsPerOp != 1477 {
		t.Errorf("metrics = %+v", m)
	}
	if ms[2].name != "ScanEq-4" || ms[2].hasAllocs {
		t.Errorf("ScanEq parsed as %+v", ms[2])
	}
}

func TestMatchBaselineStripsGomaxprocsSuffix(t *testing.T) {
	base := map[string]baselineEntry{
		"TransitiveClosure/seminaive-indexed-10k": {NsPerOp: 1},
		"SelectEq/scan-10000":                     {NsPerOp: 2},
	}
	// Exact match wins, including names whose last segment is numeric.
	if e, key, ok := matchBaseline(base, "SelectEq/scan-10000"); !ok || key != "SelectEq/scan-10000" || e.NsPerOp != 2 {
		t.Errorf("exact numeric-suffix match failed: %v %q %v", e, key, ok)
	}
	// GOMAXPROCS suffix is stripped when the exact name is absent.
	if _, key, ok := matchBaseline(base, "TransitiveClosure/seminaive-indexed-10k-4"); !ok || key != "TransitiveClosure/seminaive-indexed-10k" {
		t.Errorf("suffix strip failed: %q %v", key, ok)
	}
	// On a multi-core host the numeric-suffix baseline is found by stripping
	// the appended "-4" from "scan-10000-4".
	if _, key, ok := matchBaseline(base, "SelectEq/scan-10000-4"); !ok || key != "SelectEq/scan-10000" {
		t.Errorf("numeric-suffix strip failed: %q %v", key, ok)
	}
	if _, _, ok := matchBaseline(base, "Unknown/bench"); ok {
		t.Error("unknown benchmark should not match")
	}
}

func TestCheckFlagsRegressionsAndMissing(t *testing.T) {
	base := map[string]baselineEntry{
		"A": {NsPerOp: 100, AllocsPerOp: 1000},
		"B": {NsPerOp: 100},
		"C": {NsPerOp: 100},
	}
	measured := []measurement{
		{name: "A", nsPerOp: 150, allocsPerOp: 1400, hasAllocs: true}, // allocs over 30%
		{name: "B", nsPerOp: 250},                                     // ns over 100%
		// C missing entirely.
		{name: "D", nsPerOp: 5}, // no baseline: note only
	}
	failures := check(base, measured, 0.30, 1.0, true)
	if len(failures) != 3 {
		t.Fatalf("failures = %v, want 3", failures)
	}
	joined := strings.Join(failures, "\n")
	for _, want := range []string{"A: 1400 allocs/op", "B: 250 ns/op", "C: baseline benchmark was not measured"} {
		if !strings.Contains(joined, want) {
			t.Errorf("failures missing %q:\n%s", want, joined)
		}
	}

	// Within tolerance: no failures.
	okMeasured := []measurement{
		{name: "A", nsPerOp: 120, allocsPerOp: 1200, hasAllocs: true},
		{name: "B", nsPerOp: 180},
		{name: "C", nsPerOp: 90},
	}
	if failures := check(base, okMeasured, 0.30, 1.0, true); len(failures) != 0 {
		t.Errorf("unexpected failures: %v", failures)
	}

	// Wall-clock checks disabled: only alloc regressions fire.
	failures = check(base, measured, 0.30, 1.0, false)
	joined = strings.Join(failures, "\n")
	if strings.Contains(joined, "ns/op") {
		t.Errorf("ns/op failure with wall-clock checks disabled:\n%s", joined)
	}
	if !strings.Contains(joined, "allocs/op") {
		t.Errorf("alloc regression not flagged:\n%s", joined)
	}
}

func TestFlattenMergesGroups(t *testing.T) {
	flat := flatten(map[string]map[string]baselineEntry{
		"cylog":    {"A": {NsPerOp: 1}},
		"relstore": {"B": {NsPerOp: 2}},
	})
	if len(flat) != 2 || flat["A"].NsPerOp != 1 || flat["B"].NsPerOp != 2 {
		t.Errorf("flatten = %+v", flat)
	}
}
