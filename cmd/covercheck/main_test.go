package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestParseProfileAndAggregate(t *testing.T) {
	profile := `mode: set
github.com/x/y/internal/cylog/engine.go:10.2,12.3 4 1
github.com/x/y/internal/cylog/engine.go:14.2,16.3 6 0
github.com/x/y/internal/cylog/engine.go:10.2,12.3 4 0
github.com/x/y/internal/relstore/relation.go:5.1,6.2 10 3
`
	path := filepath.Join(t.TempDir(), "cover.out")
	if err := os.WriteFile(path, []byte(profile), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	byDir, err := parseProfile(f)
	if err != nil {
		t.Fatal(err)
	}

	// Duplicate block counted once, covered because one duplicate is.
	cylog := aggregate(byDir, "internal/cylog")
	if cylog.total != 10 || cylog.covered != 4 {
		t.Errorf("cylog = %+v, want 10 total / 4 covered", cylog)
	}
	if pct := cylog.percent(); pct != 40 {
		t.Errorf("cylog percent = %v, want 40", pct)
	}
	relstore := aggregate(byDir, "internal/relstore")
	if relstore.total != 10 || relstore.covered != 10 {
		t.Errorf("relstore = %+v", relstore)
	}
	if empty := aggregate(byDir, "internal/nosuch"); empty.total != 0 {
		t.Errorf("nosuch = %+v", empty)
	}
}

func TestFloorFlagParsing(t *testing.T) {
	var f floorFlag
	if err := f.Set("internal/cylog=90.5"); err != nil {
		t.Fatal(err)
	}
	if err := f.Set("bad"); err == nil {
		t.Error("missing '=' should error")
	}
	if err := f.Set("pkg=notanumber"); err == nil {
		t.Error("bad percent should error")
	}
	if len(f.pkgs) != 1 || f.pkgs[0] != "internal/cylog" || f.percents[0] != 90.5 {
		t.Errorf("parsed %v %v", f.pkgs, f.percents)
	}
}
