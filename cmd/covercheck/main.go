// Command covercheck is the CI coverage gate: it reads a Go cover profile,
// aggregates statement coverage per package and fails when a package drops
// below its recorded floor.
//
//	go test -coverprofile=cover.out ./internal/cylog/ ./internal/relstore/
//	go run ./cmd/covercheck -profile cover.out \
//	    -floor internal/cylog=80 -floor internal/relstore=75
//
// Floors name package directories by suffix (module-path prefixes are
// ignored) and are recorded in the Makefile next to the cover target; raise
// them when coverage genuinely improves, never lower them to make CI pass.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path"
	"sort"
	"strconv"
	"strings"
)

// floorFlag collects repeated -floor pkg=percent flags.
type floorFlag struct {
	pkgs     []string
	percents []float64
}

func (f *floorFlag) String() string { return fmt.Sprint(f.pkgs) }

func (f *floorFlag) Set(s string) error {
	pkg, val, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want pkg=percent, got %q", s)
	}
	p, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return fmt.Errorf("bad percent in %q: %v", s, err)
	}
	f.pkgs = append(f.pkgs, pkg)
	f.percents = append(f.percents, p)
	return nil
}

// pkgCoverage accumulates statement counts for one package directory.
type pkgCoverage struct {
	total   int
	covered int
}

func (c pkgCoverage) percent() float64 {
	if c.total == 0 {
		return 0
	}
	return 100 * float64(c.covered) / float64(c.total)
}

func main() {
	var floors floorFlag
	profilePath := flag.String("profile", "cover.out", "cover profile written by go test -coverprofile")
	flag.Var(&floors, "floor", "pkg=percent floor, repeatable (pkg matched by directory suffix)")
	flag.Parse()
	if len(floors.pkgs) == 0 {
		fmt.Fprintln(os.Stderr, "covercheck: at least one -floor pkg=percent is required")
		os.Exit(2)
	}

	f, err := os.Open(*profilePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "covercheck:", err)
		os.Exit(2)
	}
	defer f.Close()
	byDir, err := parseProfile(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "covercheck:", err)
		os.Exit(2)
	}

	failed := false
	for i, pkg := range floors.pkgs {
		cov := aggregate(byDir, pkg)
		pct := cov.percent()
		status := "ok"
		if cov.total == 0 {
			status = "FAIL (no statements in profile)"
			failed = true
		} else if pct < floors.percents[i] {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("covercheck: %-28s %6.1f%% of %d statements (floor %.1f%%) %s\n",
			pkg, pct, cov.total, floors.percents[i], status)
	}
	if failed {
		os.Exit(1)
	}
}

// parseProfile reads a cover profile ("file:startLine.startCol,endLine.endCol
// numStmts count" lines) and aggregates statements per package directory.
// Duplicate blocks (merged profiles) count once, covered if any duplicate is.
func parseProfile(f *os.File) (map[string]pkgCoverage, error) {
	type block struct {
		stmts   int
		covered bool
	}
	blocks := make(map[string]block)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	first := true
	for sc.Scan() {
		line := sc.Text()
		if first && strings.HasPrefix(line, "mode:") {
			first = false
			continue
		}
		first = false
		if line == "" {
			continue
		}
		// file.go:12.34,56.2 numStmts count
		loc, rest, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		stmtStr, countStr, ok := strings.Cut(rest, " ")
		if !ok {
			continue
		}
		stmts, err1 := strconv.Atoi(stmtStr)
		count, err2 := strconv.Atoi(countStr)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("malformed profile line %q", line)
		}
		b := blocks[loc]
		b.stmts = stmts
		b.covered = b.covered || count > 0
		blocks[loc] = b
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	byDir := make(map[string]pkgCoverage)
	for loc, b := range blocks {
		file, _, ok := strings.Cut(loc, ":")
		if !ok {
			continue
		}
		dir := path.Dir(file)
		c := byDir[dir]
		c.total += b.stmts
		if b.covered {
			c.covered += b.stmts
		}
		byDir[dir] = c
	}
	return byDir, nil
}

// aggregate sums the coverage of every profile directory whose path ends with
// the given package suffix (e.g. "internal/cylog" matches
// "github.com/crowd4u/crowd4u-go/internal/cylog").
func aggregate(byDir map[string]pkgCoverage, pkgSuffix string) pkgCoverage {
	dirs := make([]string, 0, len(byDir))
	for dir := range byDir {
		dirs = append(dirs, dir)
	}
	sort.Strings(dirs)
	var out pkgCoverage
	for _, dir := range dirs {
		if dir == pkgSuffix || strings.HasSuffix(dir, "/"+pkgSuffix) {
			out.total += byDir[dir].total
			out.covered += byDir[dir].covered
		}
	}
	return out
}
