module github.com/crowd4u/crowd4u-go

go 1.22
