# Crowd4U-go build entry points. CI (.github/workflows/ci.yml) invokes these
# same targets so local runs and CI are identical.

GO        ?= go
BENCHTIME ?= 1x
PKGS      := ./...
BENCHPKGS := ./internal/cylog/ ./internal/relstore/

.PHONY: build test test-sequential lint vet fmt bench linkcheck ci

build:
	$(GO) build $(PKGS)

test:
	$(GO) test -race $(PKGS)

# Forces every engine through the sequential evaluation path (the reference
# side of the parallel differential tests); CI runs both this and `test`.
# Scoped to the packages that construct engines — only they read
# CYLOG_PARALLELISM, so re-running the rest would duplicate `test` verbatim.
ENGINEPKGS := ./internal/cylog/ ./internal/platform/ ./internal/crowdsim/

test-sequential:
	CYLOG_PARALLELISM=1 $(GO) test -race $(ENGINEPKGS)

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet $(PKGS)

lint: fmt vet

# Smoke by default (BENCHTIME=1x); use `make bench BENCHTIME=2s` for real
# measurements, and record baselines in BENCH_cylog.json (workflow in
# README.md).
bench:
	$(GO) test -run '^$$' -bench=. -benchtime=$(BENCHTIME) $(BENCHPKGS)

# Validates relative links (files and heading anchors) in README.md and
# docs/; no network access.
linkcheck:
	$(GO) test -run TestMarkdownLinks -count=1 ./internal/docs/

ci: build lint test test-sequential linkcheck bench
