# Crowd4U-go build entry points. CI (.github/workflows/ci.yml) invokes these
# same targets so local runs and CI are identical.

GO        ?= go
BENCHTIME ?= 1x
PKGS      := ./...
BENCHPKGS := ./internal/cylog/ ./internal/relstore/ ./internal/wal/

# Crash-replay differential (`make crashcheck`): randomized kill points per
# run; the seed is fixed so CI failures reproduce locally with the same
# command. Override CRASH_ITERS/CRASH_SEED to explore more kill offsets.
# CRASH_BACKEND pins the storage backend of the crashed-and-resumed runs
# ("memory" or "disk"); empty cycles both, so the default gate also proves
# disk-backed crash recovery byte-identical to the memory reference.
CRASH_ITERS   ?= 5
CRASH_SEED    ?= 1
CRASH_BACKEND ?=

# Native Go fuzzing smoke (`make fuzz`): each target gets FUZZTIME of
# coverage-guided exploration. Crashers found previously are committed under
# testdata/fuzz/ and replay as regular tests on every `go test` run.
FUZZTIME ?= 30s

# staticcheck is pinned so CI results are reproducible; `make lint` skips it
# gracefully when the binary is absent so local runs need no extra install.
STATICCHECK_VERSION ?= 2024.1.1

# Coverage floors for the engine packages, enforced by `make cover`. Current
# coverage is ~93.4% (cylog), ~88.6% (relstore) and ~87.0% (wal); the floors
# sit just below to absorb refactoring noise. Raise them when coverage
# genuinely improves; never lower them to make CI pass.
COVER_FLOOR_CYLOG    ?= 93
COVER_FLOOR_RELSTORE ?= 88
COVER_FLOOR_WAL      ?= 85

BENCHOUT     ?= bench.out
COVERPROFILE ?= cover.out

# Service-layer load gate (`make loadcheck`): cmd/loadsim drives the HTTP
# path closed-loop and its throughput + p99 answer→fixpoint latency are
# gated against BENCH_platform.json. The parameters are pinned so runs are
# comparable to the recorded baselines.
LOADSIM_ARGS      ?= -items 400 -workers 32 -commit-interval 10ms -queue 1024 -seed 1
PLATFORM_BENCHOUT ?= platform_bench.out

.PHONY: build test test-sequential test-sharded test-disk-backend lint vet fmt staticcheck bench benchcheck loadcheck cover crashcheck crashcheck-content fuzz linkcheck ci

build:
	$(GO) build $(PKGS)

test:
	$(GO) test -race $(PKGS)

# Forces every engine through the sequential evaluation path (the reference
# side of the parallel differential tests); CI runs both this and `test`.
# Scoped to the packages that construct engines — only they read
# CYLOG_PARALLELISM, so re-running the rest would duplicate `test` verbatim.
ENGINEPKGS := ./internal/cylog/ ./internal/platform/ ./internal/crowdsim/ ./internal/api/

test-sequential:
	CYLOG_PARALLELISM=1 $(GO) test -race $(ENGINEPKGS)

# Forces every engine through the hash-partitioned sharded evaluator (4
# shards), so the whole suite doubles as a differential check that sharding is
# behaviourally invisible. Same package scope as test-sequential: only these
# packages construct engines and read CYLOG_SHARDS.
test-sharded:
	CYLOG_SHARDS=4 $(GO) test -race $(ENGINEPKGS)

# Forces every platform-managed engine onto the disk-paged relstore backend
# with a byte budget small enough that base relations actually page in and
# out, turning the service-layer suites into a differential check that the
# storage seam is behaviourally invisible. Scoped to the packages that build
# engines through the platform — only they read CYLOG_BACKEND; the relstore
# conformance suite and `make crashcheck` (which cycles -backend) cover the
# storage layer and crash recovery directly.
test-disk-backend:
	CYLOG_BACKEND=disk CYLOG_BACKEND_BUDGET=16384 $(GO) test -race ./internal/platform/ ./internal/api/

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet $(PKGS)

staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck $(PKGS); \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION))"; \
	fi

lint: fmt vet staticcheck

# Smoke by default (BENCHTIME=1x); use `make bench BENCHTIME=2s` for real
# measurements, and record baselines in BENCH_cylog.json (workflow in
# README.md).
bench:
	$(GO) test -run '^$$' -bench=. -benchtime=$(BENCHTIME) $(BENCHPKGS)

# Benchmark-regression gate: runs the bench smoke and compares ns/op and
# allocs/op against BENCH_cylog.json (tolerances and the wall-clock core
# floor live in that file's `benchcheck` block; see README.md), then runs
# the service-layer load gate against BENCH_platform.json.
benchcheck: loadcheck
	$(GO) test -run '^$$' -bench=. -benchtime=$(BENCHTIME) $(BENCHPKGS) > $(BENCHOUT)
	$(GO) run ./cmd/benchcheck -baseline BENCH_cylog.json -input $(BENCHOUT)

# Closed-loop HTTP load gate: seconds, not minutes — the harness self-hosts
# the service on loopback and answers every seeded item once (EXPERIMENTS.md
# §7 describes the workload and metrics).
loadcheck:
	$(GO) run ./cmd/loadsim $(LOADSIM_ARGS) > $(PLATFORM_BENCHOUT)
	$(GO) run ./cmd/benchcheck -baseline BENCH_platform.json -input $(PLATFORM_BENCHOUT)

# Coverage gate for the engine packages, enforced against the floors above.
cover:
	$(GO) test -coverprofile=$(COVERPROFILE) ./internal/cylog/ ./internal/relstore/ ./internal/wal/
	$(GO) run ./cmd/covercheck -profile $(COVERPROFILE) \
		-floor internal/cylog=$(COVER_FLOOR_CYLOG) \
		-floor internal/relstore=$(COVER_FLOOR_RELSTORE) \
		-floor internal/wal=$(COVER_FLOOR_WAL)

# Crash-replay differential gate: kills the crowd loop at randomized WAL
# write offsets (kill -9 via a child-process harness), recovers, and requires
# the resumed fixpoint, facts and pending request ids to be byte-identical to
# an uninterrupted reference run (workflow in README.md). Honors
# CYLOG_PARALLELISM like the tests.
crashcheck:
	$(GO) run ./cmd/walcheck -iterations $(CRASH_ITERS) -seed $(CRASH_SEED) -backend "$(CRASH_BACKEND)"

# Content-fuzz variant of the crash differential: answers carry adversarial
# string values (separators, control bytes, NULs, long runs) and the
# fingerprint additionally folds in per-column distinct-count statistics, so
# corrupted stats restoration fails the diff too.
crashcheck-content:
	$(GO) run ./cmd/walcheck -iterations $(CRASH_ITERS) -seed $(CRASH_SEED) -backend "$(CRASH_BACKEND)" -content-fuzz

# Coverage-guided fuzzing smoke for the untrusted-input surfaces: the binary
# snapshot importer and the CyLog parser. Go allows one -fuzz target per
# invocation, hence two runs. Crashers are saved under the package's
# testdata/fuzz/ — commit them; they become permanent regression seeds.
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzImportDatabaseBinary$$' -fuzztime $(FUZZTIME) ./internal/relstore/
	$(GO) test -run '^$$' -fuzz '^FuzzParser$$' -fuzztime $(FUZZTIME) ./internal/cylog/

# Validates relative links (files and heading anchors) in README.md,
# EXPERIMENTS.md and docs/; no network access.
linkcheck:
	$(GO) test -run TestMarkdownLinks -count=1 ./internal/docs/

ci: build lint test test-sequential test-sharded test-disk-backend linkcheck benchcheck cover crashcheck crashcheck-content
