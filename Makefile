# Crowd4U-go build entry points. CI (.github/workflows/ci.yml) invokes these
# same targets so local runs and CI are identical.

GO        ?= go
BENCHTIME ?= 1x
PKGS      := ./...
BENCHPKGS := ./internal/cylog/ ./internal/relstore/

.PHONY: build test lint vet fmt bench ci

build:
	$(GO) build $(PKGS)

test:
	$(GO) test -race $(PKGS)

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet $(PKGS)

lint: fmt vet

# Smoke by default (BENCHTIME=1x); use `make bench BENCHTIME=2s` for real
# measurements, and record baselines in BENCH_cylog.json.
bench:
	$(GO) test -run '^$$' -bench=. -benchtime=$(BENCHTIME) $(BENCHPKGS)

ci: build lint test bench
